#!/usr/bin/env python3
"""Unit tests for scripts/trace_report.py — the trace-check CI step.

Run directly (python3 scripts/test_trace_report.py) or via ctest
(registered as trace_report_py, label tier1).  Each case stages a
synthetic Tracer JSON export in a temp directory and asserts the
report/check behaviour against it.
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "trace_report", os.path.join(_HERE, "trace_report.py"))
trace_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trace_report)


def phase_row(name, spans=1, aborted=0, rounds=0, overlapped=0, charged=0,
              comm=0, wall=0):
    return {"phase": name, "spans": spans, "aborted_spans": aborted,
            "rounds": rounds, "overlapped_rounds": overlapped,
            "charged_rounds": charged, "comm_words": comm,
            "wall_ns": wall}


def trace_doc(phases, dropped=0, open_spans=0):
    return {"traceEvents": [], "dmpc": {"phases": phases,
                                        "dropped_events": dropped,
                                        "open_spans": open_spans}}


class TempTrace:
    """Context manager staging a trace file (text or JSON doc)."""

    def __init__(self, doc):
        self.doc = doc
        self.dir = None

    def __enter__(self):
        self.dir = tempfile.TemporaryDirectory()
        path = os.path.join(self.dir.name, "trace.json")
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(self.doc, str):
                f.write(self.doc)
            else:
                json.dump(self.doc, f)
        return path

    def __exit__(self, *exc):
        self.dir.cleanup()
        return False


class LoadTraceTest(unittest.TestCase):
    def test_valid_trace_loads(self):
        doc = trace_doc([phase_row("cascade", rounds=3, wall=100)])
        with TempTrace(doc) as path:
            dmpc = trace_report.load_trace(path)
        self.assertEqual(len(dmpc["phases"]), 1)
        self.assertEqual(dmpc["phases"][0]["phase"], "cascade")

    def test_invalid_json_raises(self):
        with TempTrace("{\"traceEvents\": [") as path:
            with self.assertRaises(trace_report.TraceError):
                trace_report.load_trace(path)

    def test_missing_file_raises(self):
        with self.assertRaises(trace_report.TraceError):
            trace_report.load_trace("/nonexistent/trace.json")

    def test_missing_dmpc_section_raises(self):
        with TempTrace({"traceEvents": []}) as path:
            with self.assertRaises(trace_report.TraceError):
                trace_report.load_trace(path)

    def test_malformed_phase_row_raises(self):
        doc = trace_doc([{"spans": 1}])  # no "phase" key
        with TempTrace(doc) as path:
            with self.assertRaises(trace_report.TraceError):
                trace_report.load_trace(path)

    def test_non_integer_column_raises(self):
        doc = trace_doc([phase_row("cascade")])
        doc["dmpc"]["phases"][0]["wall_ns"] = "fast"
        with TempTrace(doc) as path:
            with self.assertRaises(trace_report.TraceError):
                trace_report.load_trace(path)


class CheckTest(unittest.TestCase):
    def test_clean_trace_passes(self):
        doc = trace_doc([phase_row("batch", rounds=1)])
        with TempTrace(doc) as path:
            dmpc = trace_report.load_trace(path)
            trace_report.check(dmpc, path)  # must not raise

    def test_open_spans_fail(self):
        doc = trace_doc([phase_row("batch", rounds=1)], open_spans=2)
        with TempTrace(doc) as path:
            dmpc = trace_report.load_trace(path)
            with self.assertRaisesRegex(trace_report.TraceError,
                                        "left open"):
                trace_report.check(dmpc, path)

    def test_empty_phase_table_fails(self):
        doc = trace_doc([])
        with TempTrace(doc) as path:
            dmpc = trace_report.load_trace(path)
            with self.assertRaisesRegex(trace_report.TraceError, "empty"):
                trace_report.check(dmpc, path)


class DominantPhaseTest(unittest.TestCase):
    def test_largest_wall_among_round_owners_wins(self):
        phases = [
            phase_row("batch", wall=10**9),  # no rounds: annotation only
            phase_row("cascade", rounds=5, wall=400),
            phase_row("kway-split", rounds=2, wall=900),
        ]
        self.assertEqual(trace_report.dominant_phase(phases), "kway-split")

    def test_charged_rounds_qualify(self):
        phases = [phase_row("directory", charged=3, wall=50)]
        self.assertEqual(trace_report.dominant_phase(phases), "directory")

    def test_no_rounds_returns_none(self):
        self.assertIsNone(trace_report.dominant_phase(
            [phase_row("batch", wall=100)]))


class RenderTableTest(unittest.TestCase):
    def render(self, doc):
        out = io.StringIO()
        trace_report.render_table(doc["dmpc"], out=out)
        return out.getvalue()

    def test_table_names_dominant_phase_and_shares(self):
        doc = trace_doc([
            phase_row("cascade", rounds=3, comm=600, wall=3 * 10**6),
            phase_row("kway-join", rounds=1, comm=200, wall=10**6),
        ])
        text = self.render(doc)
        self.assertIn("dominant per-round phase: cascade", text)
        self.assertIn("75.0%", text)  # cascade's comm and wall share
        self.assertIn("cascade", text)
        self.assertIn("kway-join", text)

    def test_dropped_events_are_noted(self):
        doc = trace_doc([phase_row("cascade", rounds=1, wall=10)],
                        dropped=7)
        self.assertIn("7 event(s) dropped", self.render(doc))

    def test_no_rounds_no_dominant(self):
        doc = trace_doc([phase_row("batch", wall=10)])
        self.assertIn("(no rounds traced)", self.render(doc))


class MainTest(unittest.TestCase):
    def test_check_ok_exit_zero(self):
        doc = trace_doc([phase_row("cascade", rounds=1, wall=10)])
        with TempTrace(doc) as path:
            self.assertEqual(trace_report.main([path, "--check"]), 0)

    def test_check_open_spans_exit_one(self):
        doc = trace_doc([phase_row("cascade", rounds=1)], open_spans=1)
        with TempTrace(doc) as path:
            self.assertEqual(trace_report.main([path, "--check"]), 1)

    def test_report_mode_exit_zero(self):
        doc = trace_doc([phase_row("cascade", rounds=1, wall=10)])
        with TempTrace(doc) as path:
            self.assertEqual(trace_report.main([path]), 0)

    def test_bad_json_exit_one(self):
        with TempTrace("not json") as path:
            self.assertEqual(trace_report.main([path]), 1)


if __name__ == "__main__":
    unittest.main()
