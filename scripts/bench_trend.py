#!/usr/bin/env python3
"""Trend gate for the CI bench job: wall-clock, rounds/update, and
scheduler-counter trends.

Compares the current BENCH_*.json artifacts (written by
`bench_table1 --json` / `bench_scaling --json`) against the previous
run's copies restored from the actions/cache baseline (keyed on main)
and fails when any workload regressed:

  * wall-clock grew by more than --max-regress (sub-floor rows are
    ignored: CI runners are noisy and a 25% swing on a 20 ms row is
    weather, not a regression — unless the row grew PAST the floor;
    rows whose "cores" field differs between baseline and current are
    skipped entirely: a runner-hardware change is not a regression);
  * rounds_per_update grew by more than --max-rounds-regress (rounds
    are deterministic, so this bound is tight);
  * the pipeline hit rate (waves_pipelined / speculative attempts)
    dropped by more than --max-hit-rate-drop, on rows with at least
    --min-attempts baseline attempts;
  * deferred_updates grew by more than --max-deferred-growth (plus a
    small absolute slack for tiny counts);
  * replacement-cascade rounds per batch (cascade_rounds / batches, the
    batch-dynamic protocol's reconnection cost) grew by more than
    --max-cascade-regress plus a small absolute slack;
  * serving query rounds per batch (query_rounds_per_batch from
    bench_serving — the read path is O(1) rounds by construction, so
    like rounds/update this is deterministic) grew by more than
    --max-query-rounds-regress;
  * serving p99 query latency (p99_us) grew by more than
    --max-p99-regress — latency is as noisy as wall-clock, so it gets
    the same treatment: sub-floor rows (both sides under --min-p99-us)
    are ignored unless the row grew PAST the floor, and rows whose
    "cores" field changed are skipped;
  * the fault-free undo-journal overhead (journal_overhead_pct from
    bench_serving's atomic-on vs atomic-off A/B timing) exceeds
    --max-journal-overhead percent.  This gate is ABSOLUTE — it binds
    every current row that carries the metric even on the first run,
    with no baseline to diff against — because the atomicity tax is a
    standing budget, not a trend.  Rows whose atomic-off reference run
    (journal_off_seconds) is under --min-journal-seconds are skipped
    with a notice: a percentage of a near-zero wall time is weather;
  * the tracing-disabled overhead (trace_overhead_pct from bench_micro's
    installed-but-disabled tracer vs no-tracer A/B timing) exceeds
    --max-trace-overhead percent.  Same ABSOLUTE treatment as the
    journal gate — the observability layer's off-path cost is a
    standing budget (docs/OBSERVABILITY.md) — with the same noise
    floor: rows whose no-tracer reference run (trace_off_seconds) is
    under --min-trace-seconds are skipped with a notice.

Rows are matched by (bench, name[, n]).  A missing baseline (first run,
expired cache) passes with a notice — the save step repopulates it.  A
BASELINE_SHA file in the baseline directory (stamped by the CI job when
it stages a baseline) is logged so the comparison target is visible.

With --summary PATH a markdown comparison table is appended there
(pointed at $GITHUB_STEP_SUMMARY by CI), so regressions are readable
from the job page without downloading artifacts.

Usage:
  bench_trend.py --baseline DIR --current DIR \
      [--max-regress 0.25] [--min-seconds 0.25] \
      [--max-rounds-regress 0.05] [--max-hit-rate-drop 0.10] \
      [--min-attempts 20] [--max-deferred-growth 0.25] \
      [--max-query-rounds-regress 0.05] [--max-p99-regress 0.50] \
      [--min-p99-us 200] [--max-journal-overhead 5.0] \
      [--min-journal-seconds 0.5] [--max-trace-overhead 1.0] \
      [--min-trace-seconds 0.5] [--summary PATH]
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """{(name, n): row-dict} for one BENCH_*.json report."""
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for row in report.get("workloads", []):
        rows[(row.get("name"), row.get("n"))] = row
    return rows


def hit_rate(row, include_cross):
    """Pipeline hit rate and attempt count of one row (None, 0 when the
    row carries no scheduler counters).  With include_cross, cross-batch
    boundary misses count as failed attempts: consumed carries already
    land in waves_pipelined, so a lookahead that starts missing
    wholesale drags the rate down instead of vanishing from the
    denominator.  The caller sets include_cross only when BOTH compared
    rows carry the counter — a baseline predating it must be compared
    with the formula it was measured under, not fail spuriously."""
    hits = row.get("waves_pipelined")
    misses = row.get("speculation_misses")
    if hits is None or misses is None:
        return None, 0
    attempts = hits + misses
    if include_cross:
        attempts += row.get("cross_batch_misses", 0)
    return (hits / attempts if attempts else None), attempts


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory with the previous run's BENCH_*.json")
    ap.add_argument("--current", required=True,
                    help="directory with this run's BENCH_*.json")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="fail when wall-clock grows by more than this "
                         "fraction (default 0.25)")
    ap.add_argument("--min-seconds", type=float, default=0.25,
                    help="ignore wall-clock rows below this floor "
                         "(default 0.25)")
    ap.add_argument("--max-rounds-regress", type=float, default=0.05,
                    help="fail when rounds_per_update grows by more than "
                         "this fraction (default 0.05)")
    ap.add_argument("--max-hit-rate-drop", type=float, default=0.10,
                    help="fail when the pipeline hit rate drops by more "
                         "than this (absolute, default 0.10)")
    ap.add_argument("--min-attempts", type=int, default=20,
                    help="gate the hit rate only on rows with at least "
                         "this many baseline attempts (default 20)")
    ap.add_argument("--max-deferred-growth", type=float, default=0.25,
                    help="fail when deferred_updates grows by more than "
                         "this fraction plus a slack of 8 (default 0.25)")
    ap.add_argument("--max-cascade-regress", type=float, default=0.05,
                    help="fail when replacement-cascade rounds per batch "
                         "grow by more than this fraction plus a slack of "
                         "0.25 rounds/batch (default 0.05)")
    ap.add_argument("--max-query-rounds-regress", type=float, default=0.05,
                    help="fail when serving query rounds per batch grow "
                         "by more than this fraction (default 0.05)")
    ap.add_argument("--max-p99-regress", type=float, default=0.50,
                    help="fail when serving p99 query latency grows by "
                         "more than this fraction (default 0.50)")
    ap.add_argument("--min-p99-us", type=float, default=200.0,
                    help="ignore p99 rows below this floor in "
                         "microseconds (default 200)")
    ap.add_argument("--max-journal-overhead", type=float, default=5.0,
                    help="fail when the fault-free undo-journal overhead "
                         "(journal_overhead_pct, absolute — gated even "
                         "without a baseline) exceeds this percent "
                         "(default 5.0)")
    ap.add_argument("--min-journal-seconds", type=float, default=0.5,
                    help="skip the journal-overhead gate when the "
                         "atomic-off reference run is shorter than this "
                         "(default 0.5)")
    ap.add_argument("--max-trace-overhead", type=float, default=1.0,
                    help="fail when the tracing-disabled overhead "
                         "(trace_overhead_pct, absolute — gated even "
                         "without a baseline) exceeds this percent "
                         "(default 1.0)")
    ap.add_argument("--min-trace-seconds", type=float, default=0.5,
                    help="skip the trace-overhead gate when the "
                         "no-tracer reference run is shorter than this "
                         "(default 0.5)")
    ap.add_argument("--summary", default=None,
                    help="append a markdown comparison table to this file "
                         "(e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args(argv)

    names = [n for n in sorted(os.listdir(args.current))
             if n.startswith("BENCH_") and n.endswith(".json")]
    if not names:
        print(f"bench_trend: no BENCH_*.json in {args.current}",
              file=sys.stderr)
        return 2

    sha_path = os.path.join(args.baseline, "BASELINE_SHA")
    baseline_sha = None
    if os.path.exists(sha_path):
        with open(sha_path) as f:
            baseline_sha = f.read().strip()
        print(f"bench_trend: comparing against baseline from {baseline_sha}")

    regressions = []  # (bench, label, metric, detail)
    table = []        # markdown rows
    compared = 0
    for name in names:
        cur = load_rows(os.path.join(args.current, name))

        # Absolute undo-journal overhead budget: unlike every trend
        # above, this binds the CURRENT run on its own (the atomicity
        # tax must stay under budget even on the first run, when there
        # is no baseline to diff against).
        for key, crow in sorted(cur.items(), key=lambda kv: str(kv[0])):
            pct = crow.get("journal_overhead_pct")
            if pct is None:
                continue
            label = key[0] if key[1] is None else f"{key[0]} (n={key[1]})"
            off = crow.get("journal_off_seconds")
            if off is not None and off < args.min_journal_seconds:
                print(f"bench_trend: {name}: {label}: journal overhead "
                      f"{pct:.2f}% not gated — atomic-off reference run "
                      f"{off:.2f}s is under the {args.min_journal_seconds}s "
                      "floor")
                continue
            print(f"{name}: {label}: journal overhead {pct:.2f}% "
                  f"(budget {args.max_journal_overhead:.1f}%)")
            if pct > args.max_journal_overhead:
                regressions.append(
                    (name, label, "journal overhead",
                     f"{pct:.2f}% > {args.max_journal_overhead:.1f}% "
                     "budget"))

        # Absolute tracing-disabled overhead budget (bench_micro's
        # tracer-installed vs no-tracer A/B): the observability layer's
        # off path must stay under --max-trace-overhead percent, first
        # run included.
        for key, crow in sorted(cur.items(), key=lambda kv: str(kv[0])):
            pct = crow.get("trace_overhead_pct")
            if pct is None:
                continue
            label = key[0] if key[1] is None else f"{key[0]} (n={key[1]})"
            off = crow.get("trace_off_seconds")
            if off is not None and off < args.min_trace_seconds:
                print(f"bench_trend: {name}: {label}: trace overhead "
                      f"{pct:.2f}% not gated — no-tracer reference run "
                      f"{off:.2f}s is under the {args.min_trace_seconds}s "
                      "floor")
                continue
            print(f"{name}: {label}: trace overhead {pct:.2f}% "
                  f"(budget {args.max_trace_overhead:.1f}%)")
            if pct > args.max_trace_overhead:
                regressions.append(
                    (name, label, "trace overhead",
                     f"{pct:.2f}% > {args.max_trace_overhead:.1f}% "
                     "budget"))

        base_path = os.path.join(args.baseline, name)
        if not os.path.exists(base_path):
            print(f"bench_trend: no baseline for {name} "
                  "(first run or expired cache) — skipping")
            continue
        base = load_rows(base_path)
        for key, brow in sorted(base.items(), key=lambda kv: str(kv[0])):
            if key not in cur:
                # A renamed/removed workload silently losing coverage is
                # worth a visible notice, not a failure.
                print(f"bench_trend: {name}: baseline row {key[0]!r} "
                      "missing from current run — not compared")
                continue
            crow = cur[key]
            label = key[0] if key[1] is None else f"{key[0]} (n={key[1]})"
            compared += 1
            row_bad = []

            # A metric the baseline has but the current run lost (a
            # renamed key, dropped sched counters) silently disables its
            # gate — make that loss visible, like the missing-row notice.
            for metric in ("wall_seconds", "rounds_per_update",
                           "waves_pipelined", "deferred_updates",
                           "cascade_rounds", "query_rounds_per_batch",
                           "p99_us", "journal_overhead_pct",
                           "trace_overhead_pct"):
                if brow.get(metric) is not None and \
                        crow.get(metric) is None:
                    print(f"bench_trend: {name}: {label}: baseline has "
                          f"{metric!r} but the current run lost it — "
                          "that gate is not applied")

            # Wall-clock (noise floor: skip only when BOTH sides are
            # tiny, so a row that grew from sub-floor to large is still
            # gated).  Rows that carry a core count are only compared
            # when it matches: wall-clock measured on different hardware
            # says nothing about the code.
            bw, cw = brow.get("wall_seconds"), crow.get("wall_seconds")
            bcores, ccores = brow.get("cores"), crow.get("cores")
            wall_note = "-"
            if (bcores is not None and ccores is not None and
                    bcores != ccores):
                wall_note = (f"skipped (cores {bcores} -> {ccores})")
                print(f"bench_trend: {name}: {label}: core count changed "
                      f"({bcores} -> {ccores}) — wall-clock not compared")
            elif bw is not None and cw is not None:
                if bw >= args.min_seconds or cw >= args.min_seconds:
                    ratio = cw / bw if bw > 0 else float("inf")
                    wall_note = f"{bw:.2f}s -> {cw:.2f}s"
                    if ratio > 1.0 + args.max_regress:
                        row_bad.append("wall-clock")
                        regressions.append(
                            (name, label, "wall-clock",
                             f"{bw:.3f}s -> {cw:.3f}s"))
                else:
                    wall_note = f"{bw:.2f}s -> {cw:.2f}s (sub-floor)"

            # Rounds per update: deterministic, so gated tightly.
            br, cr = (brow.get("rounds_per_update"),
                      crow.get("rounds_per_update"))
            rounds_note = "-"
            if br is not None and cr is not None:
                rounds_note = f"{br:.2f} -> {cr:.2f}"
                if br > 0 and cr > br * (1.0 + args.max_rounds_regress):
                    row_bad.append("rounds/update")
                    regressions.append(
                        (name, label, "rounds/update",
                         f"{br:.3f} -> {cr:.3f}"))

            # Pipeline hit rate (within-batch waves + cross-batch
            # carries both count through these counters).  A current run
            # whose attempts collapsed to zero counts as rate 0.0 —
            # losing speculation entirely is the worst drop, not a skip.
            include_cross = ("cross_batch_misses" in brow and
                             "cross_batch_misses" in crow)
            brate, batt = hit_rate(brow, include_cross)
            crate, _ = hit_rate(crow, include_cross)
            has_cur_counters = crow.get("waves_pipelined") is not None
            if crate is None and has_cur_counters:
                crate = 0.0
            rate_note = "-"
            if brate is not None and crate is not None:
                rate_note = f"{brate:.2f} -> {crate:.2f}"
                if (batt >= args.min_attempts and
                        crate < brate - args.max_hit_rate_drop):
                    row_bad.append("pipeline hit rate")
                    regressions.append(
                        (name, label, "pipeline hit rate",
                         f"{brate:.2f} -> {crate:.2f}"))

            # Deferred updates: growth means the scheduler is bouncing
            # more work back to the pending set.
            bd, cd = (brow.get("deferred_updates"),
                      crow.get("deferred_updates"))
            deferred_note = "-"
            if bd is not None and cd is not None:
                deferred_note = f"{bd} -> {cd}"
                if cd > bd * (1.0 + args.max_deferred_growth) + 8:
                    row_bad.append("deferred updates")
                    regressions.append(
                        (name, label, "deferred updates", f"{bd} -> {cd}"))

            # Replacement-cascade rounds per batch: the batch-dynamic
            # protocol's cost of reconnecting split fragments.  Rounds
            # are deterministic, so growth past the tolerance (plus a
            # small absolute slack for near-zero baselines) means the
            # cascade got deeper, not noisier.
            cascade_note = "-"
            bcasc, ccasc = (brow.get("cascade_rounds"),
                            crow.get("cascade_rounds"))
            bbatches, cbatches = brow.get("batches"), crow.get("batches")
            if (bcasc is not None and ccasc is not None and
                    bbatches and cbatches):
                bpb = bcasc / bbatches
                cpb = ccasc / cbatches
                cascade_note = f"{bpb:.2f} -> {cpb:.2f}"
                if cpb > bpb * (1.0 + args.max_cascade_regress) + 0.25:
                    row_bad.append("cascade rounds/batch")
                    regressions.append(
                        (name, label, "cascade rounds/batch",
                         f"{bpb:.3f} -> {cpb:.3f}"))

            # Serving query rounds per batch: the read path is O(1)
            # rounds by construction, so this is as deterministic as
            # rounds/update and gated just as tightly.
            bq, cq = (brow.get("query_rounds_per_batch"),
                      crow.get("query_rounds_per_batch"))
            qrounds_note = "-"
            if bq is not None and cq is not None:
                qrounds_note = f"{bq:.2f} -> {cq:.2f}"
                if bq > 0 and \
                        cq > bq * (1.0 + args.max_query_rounds_regress):
                    row_bad.append("query rounds/batch")
                    regressions.append(
                        (name, label, "query rounds/batch",
                         f"{bq:.3f} -> {cq:.3f}"))

            # Serving p99 query latency: noisy like wall-clock, so it
            # gets the same noise floor (sub-floor rows ignored unless
            # they grew past the floor) and the same cores-changed skip.
            bp, cp = brow.get("p99_us"), crow.get("p99_us")
            p99_note = "-"
            if bp is not None and cp is not None:
                if (bcores is not None and ccores is not None and
                        bcores != ccores):
                    p99_note = f"skipped (cores {bcores} -> {ccores})"
                    print(f"bench_trend: {name}: {label}: core count "
                          f"changed ({bcores} -> {ccores}) — p99 not "
                          "compared")
                elif bp >= args.min_p99_us or cp >= args.min_p99_us:
                    p99_note = f"{bp:.0f}us -> {cp:.0f}us"
                    if bp > 0 and cp > bp * (1.0 + args.max_p99_regress):
                        row_bad.append("p99 latency")
                        regressions.append(
                            (name, label, "p99 latency",
                             f"{bp:.1f}us -> {cp:.1f}us"))
                else:
                    p99_note = f"{bp:.0f}us -> {cp:.0f}us (sub-floor)"

            verdict = "REGRESSION: " + ", ".join(row_bad) if row_bad \
                else "ok"
            marker = "  <-- REGRESSION" if row_bad else ""
            print(f"{name}: {label}: wall {wall_note}, r/u {rounds_note}, "
                  f"hit {rate_note}, deferred {deferred_note}, "
                  f"cascade {cascade_note}, q-rounds {qrounds_note}, "
                  f"p99 {p99_note}{marker}")
            table.append((name.removeprefix("BENCH_").removesuffix(".json"),
                          label, wall_note, rounds_note, rate_note,
                          deferred_note, cascade_note, qrounds_note,
                          p99_note, verdict))

    if args.summary:
        with open(args.summary, "a") as f:
            f.write("## Bench trend vs baseline")
            if baseline_sha:
                f.write(f" (`{baseline_sha[:12]}`)")
            f.write("\n\n")
            if not table:
                f.write("_No baseline rows to compare (first run or "
                        "expired cache)._\n\n")
            else:
                f.write("| bench | workload | wall | rounds/upd | "
                        "pipe hit | deferred | cascade/batch | "
                        "q-rounds/batch | p99 | verdict |\n")
                f.write("|---|---|---|---|---|---|---|---|---|---|\n")
                for row in table:
                    cells = " | ".join(str(c) for c in row)
                    f.write(f"| {cells} |\n")
                f.write("\n")

    if regressions:
        print(f"\nbench_trend: {len(regressions)} regression(s):",
              file=sys.stderr)
        for name, label, metric, detail in regressions:
            print(f"  {name} {label}: {metric} {detail}", file=sys.stderr)
        return 1
    print(f"bench_trend: {compared} row(s) within bounds "
          f"(wall {args.max_regress:.0%}, rounds "
          f"{args.max_rounds_regress:.0%}, hit-rate drop "
          f"{args.max_hit_rate_drop:.2f}, deferred growth "
          f"{args.max_deferred_growth:.0%}, cascade growth "
          f"{args.max_cascade_regress:.0%}, query rounds "
          f"{args.max_query_rounds_regress:.0%}, p99 growth "
          f"{args.max_p99_regress:.0%}, journal overhead budget "
          f"{args.max_journal_overhead:.1f}%, trace overhead budget "
          f"{args.max_trace_overhead:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
