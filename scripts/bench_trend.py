#!/usr/bin/env python3
"""Wall-clock trend gate for the CI bench job.

Compares the current BENCH_*.json artifacts (written by
`bench_table1 --json` / `bench_scaling --json`) against the previous
run's copies restored from the actions/cache baseline (keyed on main)
and fails when any workload's wall-clock regressed by more than the
threshold.

Rows are matched by (bench, name[, n]).  Sub-floor timings are ignored:
CI runners are noisy and a 25% swing on a 20 ms row is weather, not a
regression.  A missing baseline (first run, expired cache) passes with a
notice — the save step repopulates it.

Usage:
  bench_trend.py --baseline DIR --current DIR \
      [--max-regress 0.25] [--min-seconds 0.25]
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """{(name, n): wall_seconds} for one BENCH_*.json report."""
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for row in report.get("workloads", []):
        wall = row.get("wall_seconds")
        if wall is None:
            continue
        rows[(row.get("name"), row.get("n"))] = float(wall)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory with the previous run's BENCH_*.json")
    ap.add_argument("--current", required=True,
                    help="directory with this run's BENCH_*.json")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="fail when wall-clock grows by more than this "
                         "fraction (default 0.25)")
    ap.add_argument("--min-seconds", type=float, default=0.25,
                    help="ignore rows whose baseline wall-clock is below "
                         "this floor (default 0.25)")
    args = ap.parse_args()

    names = [n for n in sorted(os.listdir(args.current))
             if n.startswith("BENCH_") and n.endswith(".json")]
    if not names:
        print(f"bench_trend: no BENCH_*.json in {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for name in names:
        base_path = os.path.join(args.baseline, name)
        if not os.path.exists(base_path):
            print(f"bench_trend: no baseline for {name} "
                  "(first run or expired cache) — skipping")
            continue
        base = load_rows(base_path)
        cur = load_rows(os.path.join(args.current, name))
        for key, base_wall in sorted(base.items()):
            if key not in cur:
                # A renamed/removed workload silently losing coverage is
                # worth a visible notice, not a failure.
                print(f"bench_trend: {name}: baseline row {key[0]!r} "
                      "missing from current run — not compared")
                continue
            cur_wall = cur[key]
            # Noise floor: skip only when BOTH sides are tiny, so a row
            # that grew from sub-floor to large is still gated.
            if base_wall < args.min_seconds and cur_wall < args.min_seconds:
                continue
            compared += 1
            ratio = cur_wall / base_wall
            marker = ""
            if ratio > 1.0 + args.max_regress:
                marker = "  <-- REGRESSION"
                regressions.append((name, key, base_wall, cur_wall))
            label = key[0] if key[1] is None else f"{key[0]} (n={key[1]})"
            print(f"{name}: {label}: {base_wall:.3f}s -> {cur_wall:.3f}s "
                  f"({ratio:.2f}x baseline){marker}")

    if regressions:
        print(f"\nbench_trend: {len(regressions)} wall-clock regression(s) "
              f"beyond {args.max_regress:.0%}:", file=sys.stderr)
        for name, key, base_wall, cur_wall in regressions:
            print(f"  {name} {key[0]}: {base_wall:.3f}s -> {cur_wall:.3f}s",
                  file=sys.stderr)
        return 1
    print(f"bench_trend: {compared} row(s) within "
          f"{args.max_regress:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
