#!/usr/bin/env python3
"""Unit tests for scripts/bench_trend.py — the CI bench trend gate.

Run directly (python3 scripts/test_bench_trend.py) or via ctest
(registered as bench_trend_py, label tier1).  Each case stages a
synthetic baseline/current BENCH_*.json pair in a temp directory and
asserts the gate's exit code and, for the summary, its markdown output.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_trend", os.path.join(_HERE, "bench_trend.py"))
bench_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_trend)


def make_row(name, wall=1.0, rounds=None, hits=None, misses=None,
             xb_misses=None, deferred=None, n=None, cascade=None,
             batches=None, cores=None, qrounds=None, p99=None,
             journal_pct=None, journal_off=None, trace_pct=None,
             trace_off=None):
    row = {"name": name, "wall_seconds": wall}
    if n is not None:
        row["n"] = n
    if rounds is not None:
        row["rounds_per_update"] = rounds
    if hits is not None:
        row["waves_pipelined"] = hits
        row["speculation_misses"] = misses or 0
    if xb_misses is not None:
        row["cross_batch_misses"] = xb_misses
    if deferred is not None:
        row["deferred_updates"] = deferred
    if cascade is not None:
        row["cascade_rounds"] = cascade
        row["batches"] = batches if batches is not None else 100
    if cores is not None:
        row["cores"] = cores
    if qrounds is not None:
        row["query_rounds_per_batch"] = qrounds
    if p99 is not None:
        row["p99_us"] = p99
    if journal_pct is not None:
        row["journal_overhead_pct"] = journal_pct
        row["journal_off_seconds"] = \
            journal_off if journal_off is not None else 3.0
    if trace_pct is not None:
        row["trace_overhead_pct"] = trace_pct
        row["trace_off_seconds"] = \
            trace_off if trace_off is not None else 3.0
    return row


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.tmp.name, "baseline")
        self.current = os.path.join(self.tmp.name, "current")
        os.makedirs(self.baseline)
        os.makedirs(self.current)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, directory, rows, bench="table1"):
        path = os.path.join(directory, f"BENCH_{bench}.json")
        with open(path, "w") as f:
            json.dump({"bench": bench, "within_budget": True,
                       "workloads": rows}, f)

    def gate(self, *extra):
        return bench_trend.main(["--baseline", self.baseline,
                                 "--current", self.current, *extra])

    def test_identical_runs_pass(self):
        rows = [make_row("w", wall=2.0, rounds=3.0, hits=50, misses=5,
                         deferred=10)]
        self.write(self.baseline, rows)
        self.write(self.current, rows)
        self.assertEqual(self.gate(), 0)

    def test_missing_baseline_passes_with_notice(self):
        self.write(self.current, [make_row("w")])
        self.assertEqual(self.gate(), 0)

    def test_wall_clock_regression_fails(self):
        self.write(self.baseline, [make_row("w", wall=1.0)])
        self.write(self.current, [make_row("w", wall=1.6)])
        self.assertEqual(self.gate(), 1)

    def test_sub_floor_wall_noise_is_ignored(self):
        self.write(self.baseline, [make_row("w", wall=0.01)])
        self.write(self.current, [make_row("w", wall=0.02)])
        self.assertEqual(self.gate(), 0)

    def test_sub_floor_row_growing_past_floor_is_gated(self):
        self.write(self.baseline, [make_row("w", wall=0.01)])
        self.write(self.current, [make_row("w", wall=1.0)])
        self.assertEqual(self.gate(), 1)

    def test_rounds_per_update_regression_fails(self):
        # The ISSUE acceptance case: a synthetic rounds/update regression
        # must fail the job even with identical wall-clock.
        self.write(self.baseline, [make_row("w", wall=1.0, rounds=3.0)])
        self.write(self.current, [make_row("w", wall=1.0, rounds=3.4)])
        self.assertEqual(self.gate(), 1)

    def test_rounds_within_tolerance_passes(self):
        self.write(self.baseline, [make_row("w", rounds=3.0)])
        self.write(self.current, [make_row("w", rounds=3.1)])
        self.assertEqual(self.gate(), 0)

    def test_pipeline_hit_rate_drop_fails(self):
        self.write(self.baseline,
                   [make_row("w", hits=90, misses=10)])  # rate 0.90
        self.write(self.current,
                   [make_row("w", hits=50, misses=50)])  # rate 0.50
        self.assertEqual(self.gate(), 1)

    def test_total_loss_of_pipelining_fails(self):
        # Zero attempts in the current run is a rate of 0, not a skip —
        # disabling speculation entirely must not slip past the gate.
        self.write(self.baseline,
                   [make_row("w", hits=90, misses=10)])  # rate 0.90
        self.write(self.current,
                   [make_row("w", hits=0, misses=0)])
        self.assertEqual(self.gate(), 1)

    def test_cross_batch_misses_count_as_failed_attempts(self):
        # Carries that start missing wholesale must drag the rate down,
        # not vanish from the denominator: 50/(50+10) = 0.83 baseline vs
        # 50/(50+10+40) = 0.50 current.
        self.write(self.baseline,
                   [make_row("w", hits=50, misses=10, xb_misses=0)])
        self.write(self.current,
                   [make_row("w", hits=50, misses=10, xb_misses=40)])
        self.assertEqual(self.gate(), 1)

    def test_pre_cross_batch_baseline_compares_under_old_formula(self):
        # A baseline produced before the cross_batch_misses counter
        # existed must not false-fail against a current run that counts
        # boundary misses: both sides drop the counter and compare the
        # within-batch rate only.
        self.write(self.baseline,
                   [make_row("w", hits=50, misses=0)])  # old-era row
        self.write(self.current,
                   [make_row("w", hits=50, misses=0, xb_misses=60)])
        self.assertEqual(self.gate(), 0)

    def test_hit_rate_ignored_below_min_attempts(self):
        self.write(self.baseline, [make_row("w", hits=3, misses=1)])
        self.write(self.current, [make_row("w", hits=0, misses=4)])
        self.assertEqual(self.gate(), 0)

    def test_deferred_updates_growth_fails(self):
        self.write(self.baseline, [make_row("w", deferred=20)])
        self.write(self.current, [make_row("w", deferred=120)])
        self.assertEqual(self.gate(), 1)

    def test_cascade_rounds_per_batch_regression_fails(self):
        # 2.0 -> 2.5 cascade rounds/batch is past the 5% + 0.25 slack.
        self.write(self.baseline, [make_row("w", cascade=200, batches=100)])
        self.write(self.current, [make_row("w", cascade=250, batches=100)])
        self.assertEqual(self.gate(), 1)

    def test_cascade_within_tolerance_passes(self):
        self.write(self.baseline, [make_row("w", cascade=200, batches=100)])
        self.write(self.current, [make_row("w", cascade=205, batches=100)])
        self.assertEqual(self.gate(), 0)

    def test_cascade_normalized_by_batches(self):
        # Twice the cascade rounds over twice the batches is flat.
        self.write(self.baseline, [make_row("w", cascade=200, batches=100)])
        self.write(self.current, [make_row("w", cascade=400, batches=200)])
        self.assertEqual(self.gate(), 0)

    def test_cascade_zero_baseline_gets_absolute_slack(self):
        # A cascade-free baseline tolerates a trickle, not a flood.
        self.write(self.baseline, [make_row("w", cascade=0, batches=100)])
        self.write(self.current, [make_row("w", cascade=20, batches=100)])
        self.assertEqual(self.gate(), 0)
        self.write(self.current, [make_row("w", cascade=100, batches=100)])
        self.assertEqual(self.gate(), 1)

    def test_query_rounds_per_batch_regression_fails(self):
        # The serving read path is O(1) rounds by construction, so this
        # is deterministic and gated as tightly as rounds/update.
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", qrounds=6.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", qrounds=6.5)],
                   bench="serving")
        self.assertEqual(self.gate(), 1)

    def test_query_rounds_within_tolerance_passes(self):
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", qrounds=6.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", qrounds=6.2)],
                   bench="serving")
        self.assertEqual(self.gate(), 0)

    def test_p99_latency_regression_fails(self):
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", p99=1000.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", p99=2000.0)],
                   bench="serving")
        self.assertEqual(self.gate(), 1)

    def test_p99_within_noise_tolerance_passes(self):
        # 30% latency growth is inside the 50% noise allowance.
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", p99=1000.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", p99=1300.0)],
                   bench="serving")
        self.assertEqual(self.gate(), 0)

    def test_sub_floor_p99_noise_is_ignored(self):
        # A 2x swing on a sub-200us row is scheduler weather, but a row
        # that grows PAST the floor is still gated.
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", p99=50.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", p99=100.0)],
                   bench="serving")
        self.assertEqual(self.gate(), 0)
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", p99=900.0)],
                   bench="serving")
        self.assertEqual(self.gate(), 1)

    def test_p99_skipped_when_core_counts_differ(self):
        # Latency measured on different hardware says nothing about the
        # code — but the deterministic query-rounds gate still applies.
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", p99=1000.0,
                             qrounds=6.0, cores=4)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", p99=4000.0,
                             qrounds=6.0, cores=16)],
                   bench="serving")
        self.assertEqual(self.gate(), 0)

    def test_wall_clock_skipped_when_core_counts_differ(self):
        # A 4-core baseline vs a 16-core runner: the 2x wall-clock swing
        # is hardware, not code — the rounds gate still applies.
        self.write(self.baseline,
                   [make_row("w", wall=1.0, rounds=3.0, cores=4)])
        self.write(self.current,
                   [make_row("w", wall=2.0, rounds=3.0, cores=16)])
        self.assertEqual(self.gate(), 0)

    def test_wall_clock_gated_when_core_counts_match(self):
        self.write(self.baseline, [make_row("w", wall=1.0, cores=4)])
        self.write(self.current, [make_row("w", wall=2.0, cores=4)])
        self.assertEqual(self.gate(), 1)

    def test_deferred_small_count_slack(self):
        # Tiny counts get an absolute slack: 0 -> 5 is not a regression.
        self.write(self.baseline, [make_row("w", deferred=0)])
        self.write(self.current, [make_row("w", deferred=5)])
        self.assertEqual(self.gate(), 0)

    def test_rows_matched_by_name_and_n(self):
        self.write(self.baseline, [make_row("w", rounds=3.0, n=256),
                                   make_row("w", rounds=1.0, n=1024)])
        self.write(self.current, [make_row("w", rounds=3.0, n=256),
                                  make_row("w", rounds=2.0, n=1024)])
        self.assertEqual(self.gate(), 1)

    def test_summary_table_written(self):
        self.write(self.baseline, [make_row("w", wall=1.0, rounds=3.0)])
        self.write(self.current, [make_row("w", wall=1.0, rounds=3.4)])
        with open(os.path.join(self.baseline, "BASELINE_SHA"), "w") as f:
            f.write("0123456789abcdef\n")
        summary = os.path.join(self.tmp.name, "summary.md")
        self.assertEqual(self.gate("--summary", summary), 1)
        with open(summary) as f:
            text = f.read()
        self.assertIn("## Bench trend vs baseline", text)
        self.assertIn("0123456789ab", text)  # stamped baseline SHA
        self.assertIn("| table1 | w |", text)
        self.assertIn("REGRESSION: rounds/update", text)

    def test_summary_on_first_run_names_the_missing_baseline(self):
        self.write(self.current, [make_row("w")])
        summary = os.path.join(self.tmp.name, "summary.md")
        self.assertEqual(self.gate("--summary", summary), 0)
        with open(summary) as f:
            self.assertIn("No baseline rows", f.read())

    def test_lost_metric_prints_a_notice(self):
        # Dropping a gated metric from the current JSON must not fail,
        # but the disabled gate has to be called out.
        import contextlib
        import io
        self.write(self.baseline, [make_row("w", rounds=3.0)])
        self.write(self.current, [{"name": "w", "wall_seconds": 1.0}])
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(self.gate(), 0)
        self.assertIn("lost it", out.getvalue())
        self.assertIn("rounds_per_update", out.getvalue())

    def test_empty_current_dir_errors(self):
        self.assertEqual(self.gate(), 2)

    def test_journal_overhead_over_budget_fails(self):
        # The undo-journal atomicity tax has an absolute 5% budget.
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", journal_pct=1.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", journal_pct=7.5)],
                   bench="serving")
        self.assertEqual(self.gate(), 1)

    def test_journal_overhead_within_budget_passes(self):
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", journal_pct=1.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", journal_pct=4.9)],
                   bench="serving")
        self.assertEqual(self.gate(), 0)

    def test_journal_overhead_gated_without_baseline(self):
        # The budget is absolute: the very first run (no baseline at
        # all) must already hold the journal under 5%.
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", journal_pct=9.0)],
                   bench="serving")
        self.assertEqual(self.gate(), 1)

    def test_journal_overhead_skipped_below_seconds_floor(self):
        # A percentage of a 0.05s reference run is weather, not a tax —
        # skipped with a notice instead of gated.
        import contextlib
        import io
        self.write(self.current,
                   [make_row("serving/zipfian-mixed", journal_pct=40.0,
                             journal_off=0.05)],
                   bench="serving")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(self.gate(), 0)
        self.assertIn("not gated", out.getvalue())

    def test_trace_overhead_over_budget_fails(self):
        # The tracing-disabled off path has an absolute 1% budget.
        self.write(self.current,
                   [make_row("dynforest_trace_overhead_n131072",
                             trace_pct=1.8)],
                   bench="micro")
        self.assertEqual(self.gate(), 1)

    def test_trace_overhead_within_budget_passes(self):
        self.write(self.current,
                   [make_row("dynforest_trace_overhead_n131072",
                             trace_pct=0.4)],
                   bench="micro")
        self.assertEqual(self.gate(), 0)

    def test_trace_overhead_skipped_below_seconds_floor(self):
        # A percentage of a 0.1s reference run is weather — skipped
        # with a notice instead of gated.
        import contextlib
        import io
        self.write(self.current,
                   [make_row("dynforest_trace_overhead_n131072",
                             trace_pct=25.0, trace_off=0.1)],
                   bench="micro")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(self.gate(), 0)
        self.assertIn("not gated", out.getvalue())

    def test_trace_overhead_budget_flag_raises_ceiling(self):
        self.write(self.current,
                   [make_row("dynforest_trace_overhead_n131072",
                             trace_pct=1.8)],
                   bench="micro")
        self.assertEqual(self.gate("--max-trace-overhead", "2.5"), 0)

    def test_lost_trace_metric_prints_a_notice(self):
        import contextlib
        import io
        self.write(self.baseline,
                   [make_row("dynforest_trace_overhead_n131072",
                             trace_pct=0.3)],
                   bench="micro")
        self.write(self.current,
                   [make_row("dynforest_trace_overhead_n131072")],
                   bench="micro")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(self.gate(), 0)
        self.assertIn("lost it", out.getvalue())
        self.assertIn("trace_overhead_pct", out.getvalue())

    def test_lost_journal_metric_prints_a_notice(self):
        import contextlib
        import io
        self.write(self.baseline,
                   [make_row("serving/zipfian-mixed", journal_pct=1.0)],
                   bench="serving")
        self.write(self.current,
                   [make_row("serving/zipfian-mixed")], bench="serving")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(self.gate(), 0)
        self.assertIn("lost it", out.getvalue())
        self.assertIn("journal_overhead_pct", out.getvalue())


if __name__ == "__main__":
    unittest.main()
